#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>

#include "core/build_info.hpp"
#include "core/parallel.hpp"

namespace uno {

InterDcConfig Experiment::make_topo_config(const UnoConfig& uno, const SchemeSpec& scheme,
                                           int fattree_k, std::uint64_t seed,
                                           PathMode paths) {
  InterDcConfig t;
  t.k = fattree_k > 0 ? fattree_k : uno.fattree_k;
  t.num_dcs = uno.num_dcs;
  t.cross_links = uno.cross_links;
  t.link_rate = uno.link_rate;
  t.seed = seed;
  t.path_mode = paths;
  t.cross_link_latency = t.cross_latency_for_rtt(uno.inter_rtt);
  // A per-pair RTT matrix translates entry-wise into per-pair WAN latencies
  // (>2-DC heterogeneous meshes); zero entries keep the scalar default.
  const std::size_t nd = static_cast<std::size_t>(t.num_dcs);
  if (uno.inter_rtt_matrix.size() == nd * nd) {
    t.cross_latency_matrix.assign(nd * nd, 0);
    for (std::size_t i = 0; i < nd * nd; ++i)
      if (uno.inter_rtt_matrix[i] > 0)
        t.cross_latency_matrix[i] = t.cross_latency_for_rtt(uno.inter_rtt_matrix[i]);
  }

  auto red_for = [&uno](std::int64_t capacity) {
    RedConfig red;
    red.enabled = true;
    red.min_bytes = static_cast<std::int64_t>(uno.red_min_fraction * static_cast<double>(capacity));
    red.max_bytes = static_cast<std::int64_t>(uno.red_max_fraction * static_cast<double>(capacity));
    return red;
  };

  // Intra-DC ports. Trimming is a fabric capability of the htsim-style
  // switches the paper builds on; it serves all schemes equally.
  t.queue.rate = uno.link_rate;
  t.queue.capacity_bytes = uno.queue_capacity;
  t.queue.trim = uno.trim_enabled;
  t.queue.red = red_for(uno.queue_capacity);
  auto phantom_red = [&uno](std::int64_t vcap) {
    RedConfig red;
    red.enabled = true;
    red.min_bytes =
        static_cast<std::int64_t>(uno.phantom_red_min_fraction * static_cast<double>(vcap));
    red.max_bytes =
        static_cast<std::int64_t>(uno.phantom_red_max_fraction * static_cast<double>(vcap));
    return red;
  };
  if (scheme.phantom_marking) {
    t.queue.phantom.enabled = true;
    t.queue.phantom.drain_fraction = uno.phantom_drain_fraction;
    const auto vcap = static_cast<std::int64_t>(uno.phantom_cap_intra_bdp *
                                                static_cast<double>(uno.intra_bdp()));
    t.queue.phantom.red = phantom_red(vcap);
    t.queue.phantom.cap_bytes = vcap;
  }

  // Host NIC TX port: same marking behaviour but effectively unbounded —
  // a host's own stack backpressures rather than dropping, so a window
  // burst larger than a switch buffer queues at the sender (self-inflicted
  // delay), exactly as in htsim's pacing-at-line-rate sender model.
  t.nic_queue = t.queue;
  t.nic_queue.capacity_bytes = 256ll << 20;

  // Uplink (edge->agg, agg->core) ports: same template, but their rate is
  // divided by the oversubscription factor and they host the QCN probes
  // when the Annulus add-on is active.
  t.uplink_queue = t.queue;
  if (uno.oversubscription > 1.0)
    t.uplink_queue.rate =
        static_cast<Bandwidth>(static_cast<double>(uno.link_rate) / uno.oversubscription);
  if (scheme.annulus) {
    t.uplink_queue.qcn.enabled = true;
    t.uplink_queue.qcn.threshold_bytes = uno.qcn_threshold;
    t.uplink_queue.qcn.min_interval = uno.qcn_min_interval;
  }

  // WAN-facing ports: same marking strategy, possibly deeper buffers, and
  // phantom thresholds sized to the inter-DC BDP (§2.3 / §4.1.3).
  t.border_queue = t.queue;
  t.border_queue.capacity_bytes = uno.border_queue_capacity;
  t.border_queue.red = red_for(uno.border_queue_capacity);
  if (scheme.phantom_marking) {
    const auto vcap = static_cast<std::int64_t>(uno.phantom_cap_inter_bdp *
                                                static_cast<double>(uno.inter_bdp()));
    t.border_queue.phantom.red = phantom_red(vcap);
    t.border_queue.phantom.cap_bytes = vcap;
  }
  if (scheme.annulus) {
    // core->border ports are source-side too (§2.2: Annulus helps when the
    // hot spot is near the source, before the datacenter boundary).
    t.border_queue.qcn.enabled = true;
    t.border_queue.qcn.threshold_bytes = uno.qcn_threshold;
    t.border_queue.qcn.min_interval = uno.qcn_min_interval;
  }
  return t;
}

void QcnDispatcher::notify(const Packet& p) {
  if (p.src_host < 0 || p.type != PacketType::kData) return;
  pending_.push_back({eq_.now() + delay_, p.src_host, p.flow_id});
  if (pending_.size() == 1) eq_.schedule_at(pending_.front().due, this);
}

void QcnDispatcher::on_event(std::uint64_t) {
  const PendingQcn q = pending_.front();
  pending_.pop_front();
  Packet p;
  p.type = PacketType::kQcn;
  p.flow_id = q.flow_id;
  p.size = kAckSize;
  ++delivered_;
  topo_.host(q.host).receive(std::move(p));
  if (!pending_.empty()) eq_.schedule_at(pending_.front().due, this);
}

int Experiment::resolve_shards(const ExperimentConfig& cfg) {
  int n = cfg.shards == 0 ? resolve_jobs(0) : cfg.shards;
  if (n < 1) n = 1;
  // Fault scripts mutate links and queues from shard 0's timeline, which is
  // only safe when there is exactly one shard.
  if (!cfg.faults.empty()) n = 1;
  // Partition atoms are whole DCs (border tier included — the seam is the
  // cross links), so more shards than DCs cannot help.
  return std::min(n, std::max(1, cfg.uno.num_dcs));
}

Experiment::Experiment(const ExperimentConfig& cfg) : cfg_(cfg) {
  const int nshards = resolve_shards(cfg_);
  for (int s = 0; s < nshards; ++s) eqs_.push_back(std::make_unique<EventQueue>());

  // DC d lives on shard d * nshards / num_dcs (contiguous blocks; the
  // identity map in the common shards == num_dcs case).
  const int ndcs = std::max(1, cfg_.uno.num_dcs);
  std::vector<EventQueue*> atom_map;
  if (nshards == 1) {
    atom_map.push_back(eqs_[0].get());
  } else {
    for (int d = 0; d < ndcs; ++d) atom_map.push_back(eqs_[d * nshards / ndcs].get());
  }
  for (int s = 0; s < nshards; ++s) pools_.push_back(std::make_unique<SlabPool>());
  topo_ = std::make_unique<InterDcTopology>(
      atom_map,
      make_topo_config(cfg_.uno, cfg_.scheme, cfg_.fattree_k, cfg_.seed, cfg_.paths));
  fct_ = FctCollector(
      FctCollector::pipe_ideal(cfg_.uno.link_rate, cfg_.uno.intra_rtt, cfg_.uno.inter_rtt));
  if (cfg_.trace.enabled) {
    Tracer::Options topt;
    topt.categories = cfg_.trace.categories;
    topt.ring_capacity = cfg_.trace.ring_capacity;
    topt.depth_sample_interval = cfg_.trace.depth_sample_interval;
    // One tracer per shard: the Tracer staging buffer is single-writer, so
    // each shard thread emits into its own. Components register in
    // topology-build order — a pure function of the config — so traces are
    // byte-identical across runs and --jobs levels; tracer() merges the
    // per-shard tracers in shard order for export.
    for (int s = 0; s < nshards; ++s) tracers_.push_back(std::make_unique<Tracer>(topt));
    if (nshards == 1) {
      for (Queue* q : topo_->all_queues())
        q->set_trace({tracers_[0].get(), tracers_[0]->add_component(q->name())});
    } else {
      for (int d = 0; d < ndcs; ++d) {
        Tracer* tr = tracers_[shard_of(d)].get();
        for (Queue* q : topo_->atom_queues(d))
          q->set_trace({tr, tr->add_component(q->name())});
      }
    }
  }
  if (cfg_.scheme.annulus) {
    // One dispatcher per DC so notify/deliver stays inside the DC's shard.
    // Source-side ports only ever carry packets sourced in their own DC
    // (routes climb in the source DC), so delivery never crosses the seam.
    for (int d = 0; d < topo_->num_dcs(); ++d) {
      qcn_.push_back(std::make_unique<QcnDispatcher>(*atom_map[nshards == 1 ? 0 : d],
                                                     *topo_, cfg_.uno.qcn_feedback_delay));
      QcnDispatcher* qd = qcn_.back().get();
      for (Queue* q : topo_->source_side_queues(d))
        q->set_qcn_hook([qd](const Packet& p) { qd->notify(p); });
    }
  }
  // The injector draws from its own RNG stream family off the experiment
  // seed, so adding/removing faults never perturbs workload or LB draws.
  // resolve_shards forces a monolithic run whenever a plan is present.
  if (!cfg_.faults.empty()) {
    faults_ = std::make_unique<FaultInjector>(*eqs_[0], *topo_, cfg_.faults, cfg_.seed);
    if (!tracers_.empty())
      faults_->set_trace({tracers_[0].get(), tracers_[0]->add_component("faults")});
  }
  if (nshards > 1) {
    std::vector<EventQueue*> qs;
    for (auto& q : eqs_) qs.push_back(q.get());
    std::vector<CrossShardChannel*> chans;
    for (ChannelLink* c : topo_->all_channels()) chans.push_back(c);
    runner_ = std::make_unique<ShardRunner>(std::move(qs), std::move(chans));
    pending_completions_.resize(nshards);
  }
}

Time Experiment::now() const { return runner_ ? runner_->now() : eqs_[0]->now(); }

std::uint64_t Experiment::events_dispatched() const {
  std::uint64_t n = 0;
  for (const auto& q : eqs_) n += q->dispatched();
  return n;
}

std::uint64_t Experiment::qcn_delivered() const {
  std::uint64_t n = 0;
  for (const auto& qd : qcn_) n += qd->delivered();
  return n;
}

Tracer* Experiment::tracer() {
  if (tracers_.empty()) return nullptr;
  if (!runner_) return tracers_[0].get();
  // Sharded: rebuild the merged view (cheap relative to export, and always
  // consistent with the rings at the time of the call).
  merged_tracer_ = std::make_unique<Tracer>(tracers_[0]->options());
  for (const auto& t : tracers_) merged_tracer_->absorb(*t);
  return merged_tracer_.get();
}

const Tracer* Experiment::tracer() const {
  return const_cast<Experiment*>(this)->tracer();
}

FlowParams Experiment::flow_params(const FlowSpec& spec) const {
  FlowParams p;
  p.src = spec.src;
  p.dst = spec.dst;
  p.size_bytes = spec.size_bytes;
  p.mtu = cfg_.uno.mtu;
  p.start_time = spec.start_time;
  p.interdc = spec.interdc;
  p.base_rtt = spec.interdc
                   ? cfg_.uno.inter_rtt_for(topo_->dc_of(spec.src), topo_->dc_of(spec.dst))
                   : cfg_.uno.intra_rtt;
  p.ec_enabled = spec.interdc && cfg_.scheme.ec_inter;
  p.ec_data = cfg_.uno.ec_data;
  p.ec_parity = cfg_.uno.ec_parity;
  p.block_timeout = cfg_.uno.block_timeout;
  return p;
}

CcParams Experiment::cc_params(const FlowSpec& spec) const {
  CcParams c;
  c.base_rtt = spec.interdc
                   ? cfg_.uno.inter_rtt_for(topo_->dc_of(spec.src), topo_->dc_of(spec.dst))
                   : cfg_.uno.intra_rtt;
  c.intra_rtt = cfg_.uno.intra_rtt;
  c.line_rate = cfg_.uno.link_rate;
  c.mtu = cfg_.uno.mtu;
  c.flow_bytes = static_cast<std::int64_t>(spec.size_bytes);
  return c;
}

FlowSender& Experiment::spawn(const FlowSpec& spec,
                              std::function<void(const FlowResult&)> extra) {
  assert(spec.src != spec.dst);
  assert(spec.src < topo_->num_hosts() && spec.dst < topo_->num_hosts());
  assert(spec.interdc == topo_->is_interdc(spec.src, spec.dst));

  FlowParams params = flow_params(spec);
  params.id = next_flow_id_++;

  // Acquired for the flow's lifetime; the completion path releases the pair
  // so idle route slabs can be evicted after their quarantine. Spawns always
  // run on the main thread (before the run or between windows), so the path
  // store never sees concurrent access.
  const PathSet& paths = topo_->acquire_paths(spec.src, spec.dst, now());
  const CcKind cck = spec.interdc ? cfg_.scheme.cc_inter : cfg_.scheme.cc_intra;
  const LbKind lbk = spec.interdc ? cfg_.scheme.lb_inter : cfg_.scheme.lb_intra;
  auto cc = make_cc(cck, cc_params(spec), cfg_.uno);
  auto lb = make_lb(lbk, params.id, static_cast<std::uint16_t>(paths.size()),
                    params.base_rtt, cfg_.uno, cfg_.seed);

  const int src_shard = shard_of(topo_->dc_of(spec.src));
  const int dst_shard = shard_of(topo_->dc_of(spec.dst));
  FlowSender::CompletionCallback callback;
  if (runner_) {
    // Completion fires on the sender's shard thread; park the record and let
    // the barrier-side drain apply it (and any extra callback, and the path
    // release — the store is main-thread-only) in deterministic shard order.
    callback = [this, src_shard, extra = std::move(extra)](const FlowResult& r) {
      pending_completions_[src_shard].push_back({r, extra});
    };
  } else {
    callback = [this, extra = std::move(extra)](const FlowResult& r) {
      ++completed_;
      fct_.add(r);
      topo_->release_paths(r.src, r.dst, eqs_[0]->now());
      if (extra) extra(r);
    };
  }
  auto flow = std::make_unique<Flow>(*eqs_[src_shard], *eqs_[dst_shard],
                                     topo_->host(spec.src), topo_->host(spec.dst),
                                     params, &paths, std::move(cc), std::move(lb),
                                     std::move(callback), pools_[src_shard].get(),
                                     pools_[dst_shard].get());
  if (!tracers_.empty()) {
    const std::string cname = "flow:" + std::to_string(params.id);
    Tracer* ts = tracers_[src_shard].get();
    if (src_shard == dst_shard) {
      flow->set_trace({ts, ts->add_component(cname)});
    } else {
      Tracer* td = tracers_[dst_shard].get();
      flow->set_trace({ts, ts->add_component(cname)}, {td, td->add_component(cname)});
    }
  }
  flow->start();
  flows_.push_back(std::move(flow));
  return flows_.back()->sender();
}

void Experiment::spawn_all(const std::vector<FlowSpec>& specs) {
  for (const FlowSpec& spec : specs) spawn(spec);
}

void Experiment::snapshot_metrics(MetricRegistry& m) const {
  // Which binary produced these numbers — the same id the sweep farm folds
  // into its cache keys, so exported metrics are attributable to a build.
  m.set_info("build", build_info_string());
  m.set_counter("flows.spawned", flows_.size());
  m.set_counter("flows.completed", completed_);
  m.set_counter("sim.events_dispatched", events_dispatched());
  m.set_gauge("sim.time_us", to_microseconds(now()));
  m.set_counter("fabric.drops", topo_->total_drops());
  m.set_counter("fabric.trims", topo_->total_trims());

  // Timer-subsystem accounting: where scheduler time goes (DESIGN.md §13).
  // wheel.* shows how much timer traffic bypassed the near-heap; cascaded /
  // slot_drains bound the amortized re-filing cost; stale.noted vs
  // compacted shows how hard lazy cancellation leaned on compaction.
  // Summed across shards (one term monolithic).
  std::uint64_t peak_pending = 0, wheel_inserts = 0, wheel_cascades = 0;
  std::uint64_t wheel_cascaded = 0, wheel_drains = 0, wheel_ovf_ins = 0;
  std::uint64_t wheel_ovf_jumps = 0, stale_noted = 0, compactions = 0;
  std::uint64_t compacted = 0, clamped = 0, stale_disp = 0;
  for (const auto& q : eqs_) {
    peak_pending += q->peak_pending();
    wheel_inserts += q->wheel_inserts();
    wheel_cascades += q->wheel_cascades();
    wheel_cascaded += q->wheel_cascaded_entries();
    wheel_drains += q->wheel_slot_drains();
    wheel_ovf_ins += q->wheel_overflow_inserts();
    wheel_ovf_jumps += q->wheel_overflow_jumps();
    stale_noted += q->stale_noted();
    compactions += q->compactions();
    compacted += q->compacted_entries();
    clamped += q->clamped_schedules();
    stale_disp += q->stale_dispatches();
  }
  m.set_counter("sim.peak_pending", peak_pending);
  m.set_counter("sim.wheel.inserts", wheel_inserts);
  m.set_counter("sim.wheel.cascades", wheel_cascades);
  m.set_counter("sim.wheel.cascaded_entries", wheel_cascaded);
  m.set_counter("sim.wheel.slot_drains", wheel_drains);
  m.set_counter("sim.wheel.overflow_inserts", wheel_ovf_ins);
  m.set_counter("sim.wheel.overflow_jumps", wheel_ovf_jumps);
  m.set_counter("sim.stale.noted", stale_noted);
  m.set_counter("sim.stale.dispatches", stale_disp);
  m.set_counter("sim.compactions", compactions);
  m.set_counter("sim.compacted_entries", compacted);
  m.set_counter("sim.clamped_schedules", clamped);

  // Conservative-PDES accounting (DESIGN.md §14): how the bounded-lag run
  // spent its windows. Mirrors the sim.wheel.* style; per-shard event counts
  // expose load balance, stall is wall-clock waiting at barriers.
  m.set_counter("sim.shard.count", static_cast<std::uint64_t>(shards()));
  if (runner_) {
    for (std::size_t s = 0; s < eqs_.size(); ++s)
      m.set_counter("sim.shard.events." + std::to_string(s), eqs_[s]->dispatched());
    m.set_counter("sim.shard.sync_rounds", runner_->sync_rounds());
    m.set_counter("sim.shard.crossings", runner_->crossings_flushed());
    m.set_gauge("sim.shard.stall_ms", runner_->stall_seconds() * 1e3);
    m.set_counter("sim.shard.channel_peak_occupancy",
                  runner_->channel_peak_occupancy());
    const auto& hist = runner_->advance_hist();
    for (int b = 0; b < ShardRunner::kHistBuckets; ++b)
      if (hist[b] != 0)
        m.set_counter("sim.shard.advance_us_log2_" + std::to_string(b), hist[b]);
  }

  // Path-table economics (topo/pathgen.hpp): how many pair slabs were
  // built vs revived from quarantine vs recycled, and their live footprint.
  const PathStore& ps = topo_->path_store();
  m.set_counter("topo.paths.pairs_built", ps.pairs_built());
  m.set_counter("topo.paths.routes_built", ps.routes_built());
  m.set_counter("topo.paths.pairs_revived", ps.pairs_revived());
  m.set_counter("topo.paths.slabs_reused", ps.slabs_reused());
  m.set_counter("topo.paths.evictions", ps.evictions());
  m.set_counter("topo.paths.live_pairs", ps.live_pairs());
  m.set_counter("topo.paths.slab_bytes", ps.slab_bytes());
  m.set_counter("topo.paths.peak_slab_bytes", ps.peak_slab_bytes());

  // Flow-state slab pools (core/slab.hpp), summed across shards. Steady
  // state under churn shows acquires growing while heap_allocs stays flat —
  // the zero-allocation contract scale tests and bench_scale gate on.
  std::uint64_t sp_acq = 0, sp_rel = 0, sp_heap = 0;
  std::size_t sp_live = 0, sp_peak = 0, sp_pooled = 0;
  for (const auto& pool : pools_) {
    sp_acq += pool->acquires();
    sp_rel += pool->releases();
    sp_heap += pool->heap_allocs();
    sp_live += pool->live_bytes();
    sp_peak += pool->peak_live_bytes();
    sp_pooled += pool->pooled_bytes();
  }
  m.set_counter("mem.flow.slab_acquires", sp_acq);
  m.set_counter("mem.flow.slab_releases", sp_rel);
  m.set_counter("mem.flow.slab_heap_allocs", sp_heap);
  m.set_counter("mem.flow.slab_live_bytes", sp_live);
  m.set_counter("mem.flow.slab_peak_bytes", sp_peak);
  m.set_counter("mem.flow.slab_pooled_bytes", sp_pooled);

  std::uint64_t forwarded = 0, ecn_marked = 0;
  for (const Queue* q : topo_->all_queues()) {
    forwarded += q->forwarded();
    ecn_marked += q->ecn_marked();
  }
  m.set_counter("fabric.forwarded", forwarded);
  m.set_counter("fabric.ecn_marked", ecn_marked);

  // Batched link delivery (net/link.cpp): how many arrivals rode along in
  // another packet's event. delivered - coalesced = delivery events fired.
  std::uint64_t delivered = 0, coalesced = 0;
  for (const Link* l : topo_->all_links()) {
    delivered += l->delivered();
    coalesced += l->coalesced_deliveries();
  }
  m.set_counter("fabric.link.delivered", delivered);
  m.set_counter("fabric.link.coalesced_deliveries", coalesced);

  std::uint64_t pkts = 0, rtx = 0, nacks = 0, fec_masked = 0, bytes = 0;
  for (const FlowResult& r : fct_.results()) {
    pkts += r.packets_sent;
    rtx += r.retransmits;
    nacks += r.nacks;
    fec_masked += r.fec_masked;
    bytes += r.size_bytes;
  }
  m.set_counter("flows.packets_sent", pkts);
  m.set_counter("flows.retransmits", rtx);
  m.set_counter("flows.nacks", nacks);
  m.set_counter("flows.fec_masked", fec_masked);
  m.set_counter("flows.bytes_completed", bytes);

  const FctSummary all = fct_.summarize(FctCollector::Class::kAll);
  const FctSummary intra = fct_.summarize(FctCollector::Class::kIntra);
  const FctSummary inter = fct_.summarize(FctCollector::Class::kInter);
  m.set_gauge("fct.all.mean_us", all.mean_us);
  m.set_gauge("fct.all.p99_us", all.p99_us);
  m.set_gauge("fct.intra.mean_us", intra.mean_us);
  m.set_gauge("fct.intra.p99_us", intra.p99_us);
  m.set_gauge("fct.inter.mean_us", inter.mean_us);
  m.set_gauge("fct.inter.p99_us", inter.p99_us);

  if (!qcn_.empty()) m.set_counter("qcn.delivered", qcn_delivered());
  if (faults_) m.set_counter("faults.actions", faults_->actions());
  if (const Tracer* tr = tracer()) {
    m.set_counter("trace.components", tr->num_components());
    m.set_counter("trace.events", tr->total_events());
    m.set_counter("trace.dropped", tr->total_dropped());
  }
}

ExperimentResult Experiment::result(Recorder recorder) const {
  ExperimentResult r;
  r.flows_spawned = flows_.size();
  r.flows_completed = completed_;
  r.all_complete = all_complete();
  r.sim_time = now();
  r.events_dispatched = events_dispatched();
  r.fabric_drops = topo_->total_drops();
  r.fabric_trims = topo_->total_trims();
  r.fct_all = fct_.summarize(FctCollector::Class::kAll);
  r.fct_intra = fct_.summarize(FctCollector::Class::kIntra);
  r.fct_inter = fct_.summarize(FctCollector::Class::kInter);
  r.flows = fct_.results();
  snapshot_metrics(r.metrics);
  r.recorder = std::move(recorder);
  return r;
}

void Experiment::drain_completions() {
  for (auto& vec : pending_completions_) {
    for (PendingCompletion& pc : vec) {
      ++completed_;
      fct_.add(pc.r);
      topo_->release_paths(pc.r.src, pc.r.dst, runner_->now());
      if (pc.extra) pc.extra(pc.r);
    }
    vec.clear();
  }
}

void Experiment::run_until(Time t) {
  if (runner_) {
    runner_->run_until(t);
    drain_completions();
  } else {
    eqs_[0]->run_until(t);
  }
}

bool Experiment::run_to_completion(Time deadline) {
  // Chunked stepping: samplers and stragglers keep the queue non-empty, so
  // completion is checked between chunks rather than waiting for drain. The
  // chunk grid is identical monolithic and sharded — bounded-lag windows
  // subdivide a chunk but always land exactly on its boundary — so the final
  // clock (and every golden digest) is shard-count independent.
  const Time chunk = std::max<Time>(cfg_.uno.intra_rtt * 16, 100 * kMicrosecond);
  if (runner_) {
    while (!all_complete() && runner_->now() < deadline && !runner_->idle()) {
      runner_->run_until(std::min(deadline, runner_->now() + chunk));
      drain_completions();
    }
  } else {
    EventQueue& eq = *eqs_[0];
    while (!all_complete() && eq.now() < deadline && !eq.empty())
      eq.run_until(std::min(deadline, eq.now() + chunk));
  }
  // Canonical result order in every mode: completion order is an event-loop
  // artifact (and shard-interleaved when N > 1); the canonical sort is a
  // pure function of simulation content.
  fct_.canonicalize();
  return all_complete();
}

}  // namespace uno
