// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component (workload generators, load balancers, loss
// models) draws from its own `Rng` seeded from the experiment seed plus a
// component-specific stream id, so adding a component never perturbs the
// random sequence seen by the others.
#pragma once

#include <cstdint>
#include <random>

namespace uno {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Derive an independent stream: mixes `stream` into the seed with
  /// splitmix64 so nearby ids produce uncorrelated engines.
  static Rng stream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_below(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uno
