// Conservative parallel discrete-event execution: one simulation sharded
// across cores along its topology seams, bit-identical to sequential.
//
// Each shard owns one EventQueue (its own 4-ary heap + timing wheel) and a
// disjoint partition of the component graph. Shards only interact through
// CrossShardChannels — boundary links whose propagation delay is the
// channel's *lookahead*: a packet entering the channel at time t cannot
// affect the destination shard before t + lookahead. That bound makes a
// null-message-free bounded-lag scheme safe:
//
//   window = min over channels of (lookahead - 1)
//   repeat: run every shard independently to now + window (in parallel),
//           then — single-threaded, at the barrier — move everything the
//           shards staged into their destination queues.
//
// The "- 1" is load-bearing: an ingress at the very start of a window comes
// due exactly `lookahead` later, so windows of length `lookahead - 1` end
// strictly before any packet staged inside them can be due. Every crossing
// is therefore scheduled into its destination queue before that queue's
// clock reaches the delivery time — no shard ever receives an event in its
// past, and no rollback machinery is needed.
//
// Determinism does not come from the barrier protocol alone: crossings are
// enqueued with *canonical* keys (EventQueue::canonical_seq — channel id +
// per-channel sequence in a band above all intra-shard sequence numbers), so
// the (time, seq) dispatch order of every event is a pure function of
// simulation content. A run with --shards N dispatches the same events at
// the same times in the same per-shard relative order as --shards 1; see
// DESIGN.md §14 for the commutation argument.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/parallel.hpp"
#include "sim/event.hpp"
#include "sim/time.hpp"

namespace uno {

/// A directed boundary crossing between two shards. Implemented by
/// net::ChannelLink; the sim layer sees only what the synchronization
/// protocol needs, keeping sim/ free of net/ dependencies.
class CrossShardChannel {
 public:
  virtual ~CrossShardChannel() = default;

  /// Minimum delay between ingress and delivery — the channel's lookahead.
  /// Read only at barriers (the coordinator), so a fault script changing a
  /// link latency mid-run is picked up at the next window boundary.
  virtual Time lookahead() const = 0;

  /// Move everything staged by the source shard into the destination
  /// shard's queue. Called single-threaded at the barrier. Returns the
  /// number of crossings moved.
  virtual std::size_t flush_staged() = 0;

  /// Crossings currently staged or in flight (scheduled but not delivered).
  virtual std::size_t occupancy() const = 0;

  /// High-water mark of occupancy() over the run.
  virtual std::size_t peak_occupancy() const = 0;
};

/// Drives N shard queues through bounded-lag windows. now()/dispatched()
/// aggregate across shards so callers see one simulation, not N.
class ShardRunner {
 public:
  ShardRunner(std::vector<EventQueue*> queues,
              std::vector<CrossShardChannel*> channels);

  /// Advance every shard to exactly `target` (all queue clocks land on it),
  /// dispatching all events with time <= target. Returns events dispatched
  /// across all shards during this call.
  std::uint64_t run_until(Time target);

  /// Barrier-time clock: every shard queue agrees on it between calls.
  Time now() const { return now_; }

  /// Total events dispatched across all shards (the sharded counterpart of
  /// EventQueue::dispatched — see the contract note at event.hpp's
  /// run_until).
  std::uint64_t dispatched() const;

  /// True when no shard has pending events and no channel holds crossings:
  /// the simulation can never wake again.
  bool idle() const;

  int shards() const { return static_cast<int>(queues_.size()); }

  /// Synchronization metrics (sim.shard.* in Experiment::snapshot_metrics).
  std::uint64_t sync_rounds() const { return sync_rounds_; }
  std::uint64_t crossings_flushed() const { return crossings_; }
  double stall_seconds() const { return stall_ns_ * 1e-9; }
  std::size_t channel_peak_occupancy() const;

  /// Horizon-advance histogram: bucket i counts windows whose advance was in
  /// [2^i, 2^(i+1)) microseconds (bucket 0 also takes sub-microsecond
  /// advances; the last bucket is open-ended).
  static constexpr int kHistBuckets = 16;
  const std::array<std::uint64_t, kHistBuckets>& advance_hist() const {
    return advance_hist_;
  }

 private:
  std::vector<EventQueue*> queues_;
  std::vector<CrossShardChannel*> channels_;
  WorkerPool pool_;
  Time now_ = 0;
  std::uint64_t sync_rounds_ = 0;
  std::uint64_t crossings_ = 0;
  std::uint64_t stall_ns_ = 0;
  std::array<std::uint64_t, kHistBuckets> advance_hist_{};
  std::vector<std::uint64_t> busy_ns_;  // per-window scratch, one per shard
};

}  // namespace uno
