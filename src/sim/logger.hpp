// Lightweight leveled diagnostics for the simulator.
//
// Simulation components log through this sink instead of writing to stderr
// directly so tests can silence or capture output. Experiment *results* do
// not go through here — they are returned as data (see src/stats).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace uno {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  /// Process-wide logger used by simulation internals. Defaults to kWarn
  /// on stderr; tests lower it to kError.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void set_stream(std::FILE* f) { stream_ = f; }

  void log(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 3, 4)))
#endif
      ;

  std::uint64_t messages_at(LogLevel level) const {
    return counts_[static_cast<int>(level)];
  }

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::FILE* stream_ = stderr;
  std::uint64_t counts_[4] = {0, 0, 0, 0};
};

#define UNO_LOG(level, ...) ::uno::Logger::global().log(level, __VA_ARGS__)
#define UNO_WARN(...) UNO_LOG(::uno::LogLevel::kWarn, __VA_ARGS__)
#define UNO_INFO(...) UNO_LOG(::uno::LogLevel::kInfo, __VA_ARGS__)
#define UNO_DEBUG(...) UNO_LOG(::uno::LogLevel::kDebug, __VA_ARGS__)

}  // namespace uno
