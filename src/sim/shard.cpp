#include "sim/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace uno {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// More pool threads than cores only adds context switches: the window
// fan-out is CPU-bound, and WorkerPool's shared index counter lets fewer
// threads drain all shards. With one core the pool degrades to serial
// inline execution — the heap-splitting win still applies. UNO_SHARD_THREADS
// overrides the clamp so the TSan leg (and tests on small boxes) can force
// real cross-thread execution of the window fan-out.
int shard_pool_threads(std::size_t nqueues) {
  if (const char* env = std::getenv("UNO_SHARD_THREADS")) {
    const int forced = std::atoi(env);
    if (forced > 0) return forced;
  }
  return std::min(static_cast<int>(nqueues), resolve_jobs(0));
}

}  // namespace

ShardRunner::ShardRunner(std::vector<EventQueue*> queues,
                         std::vector<CrossShardChannel*> channels)
    : queues_(std::move(queues)),
      channels_(std::move(channels)),
      pool_(shard_pool_threads(queues_.size())),
      busy_ns_(queues_.size(), 0) {
  for (const EventQueue* q : queues_) now_ = std::max(now_, q->now());
}

std::uint64_t ShardRunner::dispatched() const {
  std::uint64_t n = 0;
  for (const EventQueue* q : queues_) n += q->dispatched();
  return n;
}

bool ShardRunner::idle() const {
  for (const EventQueue* q : queues_)
    if (!q->empty()) return false;
  for (const CrossShardChannel* c : channels_)
    if (c->occupancy() != 0) return false;
  return true;
}

std::size_t ShardRunner::channel_peak_occupancy() const {
  std::size_t peak = 0;
  for (const CrossShardChannel* c : channels_)
    peak = std::max(peak, c->peak_occupancy());
  return peak;
}

std::uint64_t ShardRunner::run_until(Time target) {
  const std::uint64_t before = dispatched();
  while (now_ < target) {
    if (idle()) {
      // Nothing can ever wake again; just advance every clock to the target
      // so callers observe the same monotonic time as a monolithic queue.
      for (EventQueue* q : queues_) q->run_until(target);
      now_ = target;
      break;
    }
    // Window length: one tick short of the minimum channel lookahead, so an
    // ingress at the window's first instant (due exactly `lookahead` later)
    // is still strictly beyond the window end when it is flushed at the
    // barrier — the destination queue's clock has not passed it.
    Time la = kTimeInfinity;
    for (const CrossShardChannel* c : channels_)
      la = std::min(la, c->lookahead());
    Time step = target;
    if (la != kTimeInfinity) {
      const Time window = std::max<Time>(1, la - 1);
      // The real safety bound is earliest-possible-ingress + lookahead - 1,
      // and no shard can dispatch anything (so no channel can see an
      // ingress) before the earliest pending event across all queues. Basing
      // the window there instead of at now_ lets short-lookahead runs hop
      // over idle gaps instead of crawling through them one window at a
      // time; when events are dense the two bases coincide.
      Time earliest = kTimeInfinity;
      for (EventQueue* q : queues_)
        earliest = std::min(earliest, q->next_event_time());
      const Time base = earliest == kTimeInfinity ? now_ : std::max(now_, earliest);
      if (base < target - window) step = base + window;
    }

    const std::uint64_t t0 = wall_ns();
    pool_.run(queues_.size(), [&](std::size_t i) {
      const std::uint64_t s = wall_ns();
      queues_[i]->run_until(step);
      busy_ns_[i] = wall_ns() - s;
    });
    // Single-threaded barrier phase: move staged crossings into their
    // destination queues (canonical keys keep dispatch order shard-count
    // independent).
    for (CrossShardChannel* c : channels_) crossings_ += c->flush_staged();

    const std::uint64_t round_ns = wall_ns() - t0;
    for (std::uint64_t b : busy_ns_)
      stall_ns_ += round_ns > b ? round_ns - b : 0;

    const Time advance = step - now_;
    const std::uint64_t us = static_cast<std::uint64_t>(advance / kMicrosecond);
    int bucket = 0;
    while (bucket + 1 < kHistBuckets && (us >> (bucket + 1)) != 0) ++bucket;
    ++advance_hist_[bucket];
    ++sync_rounds_;
    now_ = step;
  }
  return dispatched() - before;
}

}  // namespace uno
