// Simulated-time representation.
//
// All simulation timestamps are signed 64-bit picosecond counts. At
// picosecond resolution the serialization time of any packet on links from
// 1 Gbps to 1.6 Tbps is exact, and the representable range (~106 days)
// vastly exceeds any experiment horizon in this project.
#pragma once

#include <cstdint>

namespace uno {

/// Simulated time in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000 * kPicosecond;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Sentinel for "never" / unset timestamps.
inline constexpr Time kTimeInfinity = INT64_MAX;

/// Convert a time to fractional seconds (for reporting only).
constexpr double to_seconds(Time t) { return static_cast<double>(t) / static_cast<double>(kSecond); }
constexpr double to_microseconds(Time t) { return static_cast<double>(t) / static_cast<double>(kMicrosecond); }
constexpr double to_milliseconds(Time t) { return static_cast<double>(t) / static_cast<double>(kMillisecond); }

/// Link bandwidth in bits per second. Stored as a plain integer; helpers
/// below convert between byte counts and serialization times.
using Bandwidth = std::int64_t;

inline constexpr Bandwidth kGbps = 1'000'000'000;

/// Time to serialize `bytes` at `bw` bits/s, rounded up to a picosecond.
constexpr Time serialization_time(std::int64_t bytes, Bandwidth bw) {
  // bytes * 8 bits / (bw bits/s) seconds -> picoseconds.
  // bytes*8*1e12/bw; compute in __int128 to avoid overflow for large byte
  // counts (e.g. multi-GiB messages in the Figure 1 analytic model).
  const __int128 num = static_cast<__int128>(bytes) * 8 * kSecond;
  return static_cast<Time>((num + bw - 1) / bw);
}

/// Bytes fully drained in interval `dt` at `bw` bits/s (rounded down).
constexpr std::int64_t bytes_in_interval(Time dt, Bandwidth bw) {
  // Fast path: when dt * bw fits in 64 bits (every sub-100us observation
  // interval at realistic rates), the division by the constant 8*kSecond
  // strength-reduces to a multiply — no __udivti3 on the per-packet
  // phantom-drain path.
  std::int64_t num64 = 0;
  if (!__builtin_mul_overflow(dt, bw, &num64)) return num64 / (8 * kSecond);
  const __int128 num = static_cast<__int128>(dt) * bw;
  return static_cast<std::int64_t>(num / (8 * kSecond));
}

/// Bandwidth-delay product in bytes for a given round-trip time.
constexpr std::int64_t bdp_bytes(Time rtt, Bandwidth bw) { return bytes_in_interval(rtt, bw); }

}  // namespace uno
