#include "sim/logger.hpp"

namespace uno {

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::log(LogLevel level, const char* fmt, ...) {
  // Suppressed messages are not counted: messages_at() reports what was
  // emitted, gated exactly like the emission itself.
  if (level > level_) return;
  ++counts_[static_cast<int>(level)];
  static const char* kPrefix[] = {"[error] ", "[warn] ", "[info] ", "[debug] "};
  std::fputs(kPrefix[static_cast<int>(level)], stream_);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stream_, fmt, args);
  va_end(args);
  std::fputc('\n', stream_);
}

}  // namespace uno
