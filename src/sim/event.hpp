// Discrete-event core: a monotonic clock plus an inline 4-ary heap.
//
// Components that need to be woken register as `EventHandler`s and schedule
// themselves with an integer tag; no per-event allocation happens. Ties in
// time are broken by insertion order so the simulation is deterministic.
//
// Hot-path design (see DESIGN.md §9 and §13):
//  * Liveness is a generation-slot registry, not a weak_ptr: each handler is
//    lazily assigned a small slot id on first schedule, each heap entry
//    carries {slot, generation}, and dispatch validates with two plain loads
//    (generation compare + handler pointer) — no atomics, no allocation.
//  * The heap is an inline 4-ary array heap of 32-byte POD entries: shallower
//    than a binary heap and one cache line per sift level — but it holds only
//    the *current 65 ns quantum*. Everything later is parked in a
//    hierarchical timing wheel (sim/wheel.hpp) with O(1) schedule, and flows
//    back into the heap one quantum at a time, so long-RTT timer churn never
//    inflates the sift depth of near-term events.
//  * Cancelled/superseded Timer deadlines go stale in place (O(1)); the
//    queue counts them and compacts heap + wheel when stale entries reach
//    half of the pending set, so rearm/cancel storms (retransmit timers
//    under link flaps) cannot grow the pending set without bound.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "sim/wheel.hpp"

namespace uno {

class EventHandler;
class EventQueue;

namespace detail {

/// Maps small integer slots to live handlers. Owned (shared) by the queue
/// and every registered handler, so whichever dies last tears it down.
/// A slot's generation bumps when its handler is destroyed, invalidating
/// every heap entry scheduled against the old incarnation.
struct HandlerRegistry {
  struct Slot {
    EventHandler* handler = nullptr;
    std::uint32_t generation = 0;
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_slots;

  std::uint32_t acquire(EventHandler* h) {
    if (!free_slots.empty()) {
      const std::uint32_t s = free_slots.back();
      free_slots.pop_back();
      slots[s].handler = h;
      return s;
    }
    slots.push_back(Slot{h, 0});
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  void release(std::uint32_t slot) {
    slots[slot].handler = nullptr;
    ++slots[slot].generation;  // all pending entries for this slot go stale
    free_slots.push_back(slot);
  }
};

}  // namespace detail

/// Anything that can be woken by the event queue.
///
/// Handlers are registered with a queue's slot registry on first schedule;
/// events scheduled against a handler that has since been destroyed are
/// silently skipped, so tearing down a component (e.g. a Flow mid-flight)
/// never leaves dangling wakeups.
class EventHandler {
 public:
  EventHandler() = default;
  virtual ~EventHandler() {
    if (registry_) registry_->release(slot_);
  }
  EventHandler(const EventHandler&) = delete;
  EventHandler& operator=(const EventHandler&) = delete;

  /// Called when a scheduled event fires. `tag` is the value passed to
  /// `EventQueue::schedule_*`, letting one handler multiplex several
  /// logical timers/events. 64-bit so generation-style tags (see Timer)
  /// can never wrap within a feasible simulation.
  virtual void on_event(std::uint64_t tag) = 0;

  /// Compaction probe: return true if the entry scheduled with `tag` is
  /// already logically dead and may be dropped without dispatch (e.g. a
  /// superseded Timer generation). Must be side-effect free. Only called
  /// during heap compaction, never on the dispatch path.
  virtual bool event_stale(std::uint64_t tag) const {
    (void)tag;
    return false;
  }

 private:
  friend class EventQueue;
  std::shared_ptr<detail::HandlerRegistry> registry_;
  std::uint32_t slot_ = 0;
};

class EventQueue {
 public:
  EventQueue() : registry_(std::make_shared<detail::HandlerRegistry>()) {
    heap_.reserve(1024);  // skip the early growth reallocations
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  /// Schedule `handler->on_event(tag)` at absolute time `t`. `t` must be
  /// >= now(): asserted in debug builds, clamped to now() in release builds
  /// so a stray past deadline degrades to an immediate event instead of
  /// silently time-travelling the heap.
  void schedule_at(Time t, EventHandler* handler, std::uint64_t tag = 0) {
    assert(handler != nullptr);
    assert(t >= now_ && "cannot schedule into the past");
    if (t < now_) {
      t = now_;
      ++clamped_;
    }
    if (handler->registry_.get() != registry_.get()) bind(handler);
    const std::uint32_t slot = handler->slot_;
    push_entry(t, Entry{make_key(t, next_seq_++), tag, slot,
                        registry_->slots[slot].generation});
  }

  /// Schedule after a relative delay.
  void schedule_in(Time delay, EventHandler* handler, std::uint64_t tag = 0) {
    schedule_at(now_ + delay, handler, tag);
  }

  /// Canonical cross-shard keys. Events that cross a shard seam cannot use
  /// the destination queue's insertion counter for tie-breaking — the value
  /// it would take depends on how the run is sharded. Instead the producer
  /// supplies a *canonical* sequence: high bit set (so a crossing event sorts
  /// after every same-time intra-shard event — whose seqs count up from 0 and
  /// can never reach 2^63), then the channel id, then the per-channel
  /// sequence. The resulting (t, seq) key is a pure function of simulation
  /// content, identical for every value of --shards.
  static constexpr std::uint64_t kCanonicalBand = 1ull << 63;
  static constexpr int kChannelShift = 48;
  static std::uint64_t canonical_seq(std::uint32_t channel, std::uint64_t seq) {
    assert(channel < (1u << 15) && "channel id must fit 15 bits");
    assert(seq < (1ull << kChannelShift) && "per-channel seq overflow");
    return kCanonicalBand | (static_cast<std::uint64_t>(channel) << kChannelShift) | seq;
  }

  /// Schedule with a caller-supplied 64-bit sequence component instead of
  /// this queue's insertion counter (see canonical_seq above). Same clamping
  /// rules as schedule_at. The queue's own counter is not consumed, so the
  /// relative order of ordinary same-time events is unaffected.
  void schedule_keyed(Time t, EventHandler* handler, std::uint64_t tag,
                      std::uint64_t seq64) {
    assert(handler != nullptr);
    assert(t >= now_ && "cannot schedule into the past");
    if (t < now_) {
      t = now_;
      ++clamped_;
    }
    if (handler->registry_.get() != registry_.get()) bind(handler);
    const std::uint32_t slot = handler->slot_;
    push_entry(t, Entry{make_key(t, seq64), tag, slot,
                        registry_->slots[slot].generation});
  }

  /// Run events until the queue is empty or the clock passes `deadline`.
  /// Returns the number of events dispatched *by this queue* during the call.
  /// Under sharding (sim/shard.hpp) each shard's queue counts only its own
  /// dispatches; ShardRunner::dispatched() / Experiment::events_dispatched()
  /// sum the per-shard counters, so `sim.events` metrics and bench
  /// denominators stay comparable across --shards values.
  std::uint64_t run_until(Time deadline);

  /// Run until the queue drains completely.
  std::uint64_t run_all() { return run_until(kTimeInfinity); }

  /// Time of the earliest pending event, kTimeInfinity when empty. May pull
  /// a wheel quantum into the near-heap to find it — that move never changes
  /// dispatch order (the heap re-sorts by the full key), it just happens a
  /// little earlier than the dispatch loop would have done it. Used by the
  /// shard coordinator to hop bounded-lag windows over idle gaps.
  Time next_event_time() {
    while (heap_.empty())
      if (!refill_from_wheel()) return kTimeInfinity;
    return key_time(heap_[0]);
  }

  bool empty() const { return heap_.empty() && wheel_.empty(); }
  std::size_t pending() const { return heap_.size() + wheel_.size(); }
  std::size_t peak_pending() const { return peak_pending_; }
  /// Events executed to completion. Stale no-op wakeups (superseded Timer
  /// deadlines, dead-slot entries) are excluded: compaction removes those
  /// before they pop, and its trigger depends on queue size — counting them
  /// would make this total vary with the shard count. See stale_dispatches()
  /// for the excluded wakeups.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Stale-entry accounting, used by Timer: each cancel/rearm that strands a
  /// pending entry calls note_stale(); popping such an entry calls
  /// note_stale_consumed(). When stale entries reach half the pending set
  /// (heap + wheel) the queue compacts, dropping dead-slot entries and
  /// entries whose handler reports event_stale().
  void note_stale() {
    ++stale_hint_;
    ++stale_noted_;
    maybe_compact();
  }
  void note_stale_consumed() {
    if (stale_hint_ > 0) --stale_hint_;
    // Tell the dispatch loop the wakeup it is executing was a no-op, so it
    // stays out of dispatched(). Whether a superseded timer entry is popped
    // (here) or compacted away first depends on queue size — which depends
    // on the shard count — so counting these would make event totals vary
    // with --shards (DESIGN.md §14).
    stale_dispatch_ = true;
  }

  /// Introspection for tests and perf accounting.
  std::uint64_t compactions() const { return compactions_; }
  /// Stale wakeups popped and skipped (excluded from dispatched()).
  std::uint64_t stale_dispatches() const { return stale_dispatches_; }
  std::uint64_t compacted_entries() const { return compacted_; }
  std::uint64_t clamped_schedules() const { return clamped_; }
  std::size_t stale_hint() const { return stale_hint_; }
  std::uint64_t stale_noted() const { return stale_noted_; }

  /// Timing-wheel counters (see sim/wheel.hpp).
  std::size_t wheel_pending() const { return wheel_.size(); }
  std::uint64_t wheel_inserts() const { return wheel_.inserts(); }
  std::uint64_t wheel_cascades() const { return wheel_.cascades(); }
  std::uint64_t wheel_cascaded_entries() const { return wheel_.cascaded_entries(); }
  std::uint64_t wheel_slot_drains() const { return wheel_.slot_drains(); }
  std::uint64_t wheel_overflow_inserts() const { return wheel_.overflow_inserts(); }
  std::uint64_t wheel_overflow_jumps() const { return wheel_.overflow_jumps(); }

  /// Wheel quantum: 2^16 ps ≈ 65.5 ns per level-0 slot.
  static constexpr int kQuantumShift = 16;

 private:
  /// 32-byte POD heap entry. The heap key packs (time, insertion seq) into
  /// one 128-bit integer — time in the high 64 bits, sequence in the low —
  /// so the (t, seq) lexicographic order is a single integer compare
  /// (branch-predictor friendly in the min-child scans). Simulated time is
  /// never negative, so unsigned order matches signed order. {t, seq} is a
  /// total order, so heap rebuilds can never reorder dispatch.
  struct Entry {
    unsigned __int128 key;  // (t << 64) | seq
    std::uint64_t tag;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static unsigned __int128 make_key(Time t, std::uint64_t seq) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(t)) << 64) | seq;
  }
  static Time key_time(const Entry& e) {
    return static_cast<Time>(static_cast<std::uint64_t>(e.key >> 64));
  }

  /// Route a finished entry by quantum: the heap holds only the wheel
  /// cursor's quantum (and earlier stragglers — always safe, the heap is a
  /// full priority queue); strictly later quanta park in the wheel in O(1).
  void push_entry(Time t, const Entry& e) {
    const std::uint64_t q = static_cast<std::uint64_t>(t) >> kQuantumShift;
    if (q <= wheel_.cur()) {
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    } else {
      wheel_.insert(q, e);
    }
    const std::size_t p = heap_.size() + wheel_.size();
    if (p > peak_pending_) peak_pending_ = p;
  }

  void bind(EventHandler* h) {
    // Lazy registration; a handler outliving its queue may be re-bound to a
    // fresh queue, abandoning (= invalidating) anything still pending in
    // the old one.
    if (h->registry_) h->registry_->release(h->slot_);
    h->slot_ = registry_->acquire(h);
    h->registry_ = registry_;
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t p = (i - 1) >> 2;
      if (heap_[p].key <= e.key) break;
      heap_[i] = heap_[p];
      i = p;
    }
    heap_[i] = e;
  }

  /// Bottom-up ("hole") sift: walk the hole at `i` down the min-child path
  /// to a leaf without comparing against `e`, then bubble `e` back up. `e`
  /// is usually one of the latest deadlines (it came off the heap's back),
  /// so the bubble-up almost always stops immediately — this does ~3
  /// compares per level instead of 4, and matches libstdc++'s
  /// __adjust_heap trick that made the old binary heap hard to beat.
  void sift_down_hole(std::size_t i, Entry e) {  // by value: e may alias heap_[i]
    const std::size_t n = heap_.size();
    Entry* const h = heap_.data();
    std::size_t hole = i;
    for (;;) {
      const std::size_t c0 = 4 * hole + 1;
      if (c0 >= n) break;
      std::size_t m = c0;
      const std::size_t end = c0 + 4 < n ? c0 + 4 : n;
      for (std::size_t c = c0 + 1; c < end; ++c)
        if (h[c].key < h[m].key) m = c;
      h[hole] = h[m];
      hole = m;
    }
    while (hole > i) {
      const std::size_t p = (hole - 1) >> 2;
      if (e.key >= h[p].key) break;
      h[hole] = h[p];
      hole = p;
    }
    h[hole] = e;
  }

  void pop_min() {
    const Entry back = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down_hole(0, back);
  }

  void maybe_compact() {
    const std::size_t total = heap_.size() + wheel_.size();
    if (total >= kCompactMinSize && stale_hint_ * 2 >= total) compact();
  }
  void compact();

  /// Advance the wheel cursor to the next occupied quantum and move its
  /// entries into the heap. Returns false iff the wheel is empty.
  bool refill_from_wheel();

  static constexpr std::size_t kCompactMinSize = 64;

  struct EntryQuantum {
    std::uint64_t operator()(const Entry& e) const {
      return static_cast<std::uint64_t>(e.key >> 64) >> kQuantumShift;
    }
  };

  std::shared_ptr<detail::HandlerRegistry> registry_;
  std::vector<Entry> heap_;
  TimingWheel<Entry, EntryQuantum> wheel_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t stale_dispatches_ = 0;
  /// Set by note_stale_consumed() while an on_event is executing: marks the
  /// in-flight dispatch as a stale no-op (see the run_until loop).
  bool stale_dispatch_ = false;
  std::size_t peak_pending_ = 0;
  std::size_t stale_hint_ = 0;
  std::uint64_t stale_noted_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t compacted_ = 0;
  std::uint64_t clamped_ = 0;
};

/// A cancellable, re-armable one-shot timer built on the event queue.
///
/// Cancellation is lazy: the pending heap entry is superseded via a 64-bit
/// generation counter carried in the event tag, so cancel/rearm are O(1).
/// The queue's stale accounting (note_stale / event_stale) lets compaction
/// physically remove superseded entries when they pile up. The generation
/// is 64-bit precisely so the tag channel can never wrap: 2^64 rearms is
/// unreachable (a simulation doing 10^9 rearms/sec would need ~585 years).
class Timer : public EventHandler {
 public:
  /// `tag` is forwarded to `target->on_event(tag)` when the timer fires.
  Timer(EventQueue& eq, EventHandler* target, std::uint64_t tag)
      : eq_(eq), target_(target), tag_(tag) {}

  /// (Re)arm to fire at absolute time `t`.
  void arm_at(Time t) {
    if (armed_) eq_.note_stale();  // the outstanding entry is now superseded
    ++generation_;
    armed_ = true;
    deadline_ = t;
    eq_.schedule_at(t, this, generation_);
  }

  void arm_in(Time delay) { arm_at(eq_.now() + delay); }

  void cancel() {
    if (armed_) eq_.note_stale();
    ++generation_;
    armed_ = false;
  }

  bool armed() const { return armed_; }
  Time deadline() const { return deadline_; }

  void on_event(std::uint64_t gen) override {
    if (gen != generation_ || !armed_) {  // stale or cancelled
      eq_.note_stale_consumed();
      return;
    }
    armed_ = false;
    target_->on_event(tag_);
  }

  bool event_stale(std::uint64_t gen) const override {
    return gen != generation_ || !armed_;
  }

 private:
  EventQueue& eq_;
  EventHandler* target_;
  std::uint64_t tag_;
  std::uint64_t generation_ = 0;
  bool armed_ = false;
  Time deadline_ = 0;
};

}  // namespace uno
