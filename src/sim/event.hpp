// Discrete-event core: a monotonic clock plus a binary-heap event queue.
//
// Components that need to be woken register as `EventHandler`s and schedule
// themselves with an integer tag; no per-event allocation happens. Ties in
// time are broken by insertion order so the simulation is deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace uno {

class EventQueue;

/// Anything that can be woken by the event queue.
///
/// Handlers carry a liveness token: events scheduled against a handler that
/// has since been destroyed are silently skipped, so tearing down a
/// component (e.g. a Flow mid-flight) never leaves dangling wakeups.
class EventHandler {
 public:
  EventHandler() : liveness_(std::make_shared<char>(0)) {}
  virtual ~EventHandler() = default;
  EventHandler(const EventHandler&) = delete;
  EventHandler& operator=(const EventHandler&) = delete;

  /// Called when a scheduled event fires. `tag` is the value passed to
  /// `EventQueue::schedule_*`, letting one handler multiplex several
  /// logical timers/events.
  virtual void on_event(std::uint32_t tag) = 0;

  const std::shared_ptr<char>& liveness() const { return liveness_; }

 private:
  std::shared_ptr<char> liveness_;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  /// Schedule `handler->on_event(tag)` at absolute time `t` (must be >= now).
  void schedule_at(Time t, EventHandler* handler, std::uint32_t tag = 0);

  /// Schedule after a relative delay.
  void schedule_in(Time delay, EventHandler* handler, std::uint32_t tag = 0) {
    schedule_at(now_ + delay, handler, tag);
  }

  /// Run events until the queue is empty or the clock passes `deadline`.
  /// Returns the number of events dispatched.
  std::uint64_t run_until(Time deadline);

  /// Run until the queue drains completely.
  std::uint64_t run_all() { return run_until(kTimeInfinity); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;  // insertion order; breaks ties deterministically
    EventHandler* handler;
    std::uint32_t tag;
    std::weak_ptr<char> alive;  // skip dispatch if the handler died
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

/// A cancellable, re-armable one-shot timer built on the event queue.
///
/// Cancellation is lazy: stale heap entries are ignored via a generation
/// counter, so cancel/rearm are O(1).
class Timer : public EventHandler {
 public:
  /// `tag` is forwarded to `target->on_event(tag)` when the timer fires.
  Timer(EventQueue& eq, EventHandler* target, std::uint32_t tag)
      : eq_(eq), target_(target), tag_(tag) {}

  /// (Re)arm to fire at absolute time `t`.
  void arm_at(Time t) {
    ++generation_;
    armed_ = true;
    deadline_ = t;
    eq_.schedule_at(t, this, generation_);
  }

  void arm_in(Time delay) { arm_at(eq_.now() + delay); }

  void cancel() {
    ++generation_;
    armed_ = false;
  }

  bool armed() const { return armed_; }
  Time deadline() const { return deadline_; }

  void on_event(std::uint32_t gen) override {
    if (gen != generation_ || !armed_) return;  // stale or cancelled
    armed_ = false;
    target_->on_event(tag_);
  }

 private:
  EventQueue& eq_;
  EventHandler* target_;
  std::uint32_t tag_;
  std::uint32_t generation_ = 0;
  bool armed_ = false;
  Time deadline_ = 0;
};

}  // namespace uno
