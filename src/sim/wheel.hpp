// Hierarchical timing wheel: the far-horizon companion to the event heap.
//
// The event queue keeps only the current 65 ns quantum's entries in its
// 4-ary heap; everything later parks here in O(1) and is handed back to the
// heap one quantum at a time as the cursor advances. perm_inter-style
// inter-DC runs pend thousands of long-RTT timers and WAN in-flight
// deliveries (2 ms RTO rearm storms, ~1 ms propagation), and with a plain
// heap every one of them pays O(log n) sift traffic twice against a
// multi-thousand-entry array. The wheel turns that into: one bucket append
// on schedule, one (amortized O(1)) cascade chain on its way down, and a
// push into a now-tiny near-heap.
//
// Placement is XOR-based (the same trick as Linux hrtimer buckets /
// "hashed hierarchical wheels"): with q = time >> shift and x = q ^ cur,
// the level is the index of x's top set bit divided by 6, and the slot is
// q's 6-bit digit at that level. Because the level only depends on the
// highest *differing* digit, a slot never wraps around the ring — every
// occupied slot at every level is strictly in the future, so per-level
// 64-bit occupancy bitmaps plus ctz give the next occupied quantum without
// scanning.
//
// Determinism: the wheel never dispatches. It only moves entries back into
// the caller's heap (via pop_next_slot's sink) before their quantum starts,
// and the heap's full (time, seq) key restores the exact total order. A
// run's dispatch sequence is therefore bit-identical to the heap-only
// scheduler's — see tests/ab_identity_test.cpp for the pinned proof.
//
// Lazy cancellation composes unchanged: stale entries ride along like live
// ones and either get dropped by compact() (the queue's stale-storm valve)
// or dispatched as cheap no-ops.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace uno {

/// `Quantum` maps an Entry to its wheel quantum (time >> shift); it is
/// re-evaluated on cascade instead of being stored, keeping bucket slots at
/// sizeof(Entry).
template <typename Entry, typename Quantum>
class TimingWheel {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;  // 64
  static constexpr int kLevels = 6;
  /// Quanta addressable before an entry falls into the overflow list:
  /// 2^36 quanta = 2^52 ps ≈ 75 simulated minutes at shift 16.
  static constexpr std::uint64_t kSpanQuanta = std::uint64_t{1}
                                               << (kSlotBits * kLevels);

  TimingWheel() : buckets_(kLevels * kSlots) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Current quantum: the wheel holds only entries with quantum > cur().
  /// The caller keeps quantum <= cur() entries in its own near-structure.
  std::uint64_t cur() const { return cur_; }

  /// File an entry under quantum `q`. Requires q > cur().
  void insert(std::uint64_t q, const Entry& e) {
    ++size_;
    ++inserts_;
    place(q, e);
  }

  /// Advance the cursor to the next occupied quantum and move every entry of
  /// that quantum out through `sink` (all share quantum == cur() afterwards).
  /// Returns false iff the wheel — overflow included — is empty.
  template <typename Sink>
  bool pop_next_slot(Sink&& sink) {
    if (size_ == 0) return false;
    for (;;) {
      if (occ_[0] != 0) {
        const int idx = std::countr_zero(occ_[0]);
        cur_ = (cur_ & ~(kSlots - 1)) | static_cast<std::uint64_t>(idx);
        std::vector<Entry>& b = buckets_[idx];
        for (const Entry& e : b) sink(e);
        size_ -= b.size();
        b.clear();
        occ_[0] &= occ_[0] - 1;
        ++slot_drains_;
        return true;
      }
      int l = 1;
      while (l < kLevels && occ_[l] == 0) ++l;
      if (l < kLevels) {
        // Jump the cursor into the first occupied slot's window and re-file
        // its entries one level chain down. Slots below the cursor's own
        // digit can't be occupied (they'd be in the past), so ctz is safe.
        const int j = std::countr_zero(occ_[l]);
        const int sh = l * kSlotBits;
        const std::uint64_t below = (std::uint64_t{1} << (sh + kSlotBits)) - 1;
        cur_ = (cur_ & ~below) | (static_cast<std::uint64_t>(j) << sh);
        cascade(l, j);
      } else {
        // Wheel arrays empty; only far-future overflow remains. Jump
        // straight to its minimum and pull back whatever now fits.
        ++overflow_jumps_;
        cur_ = overflow_min_q_;
        refile_overflow();
      }
    }
  }

  /// Drop every entry for which `dead` returns true (the queue's stale-entry
  /// compaction). Returns the number removed.
  template <typename DeadPred>
  std::size_t compact(DeadPred&& dead) {
    std::size_t removed = 0;
    for (int l = 0; l < kLevels; ++l) {
      std::uint64_t occ = occ_[l];
      while (occ != 0) {
        const int idx = std::countr_zero(occ);
        occ &= occ - 1;
        std::vector<Entry>& b = buckets_[l * kSlots + idx];
        std::size_t w = 0;
        for (const Entry& e : b)
          if (!dead(e)) b[w++] = e;
        removed += b.size() - w;
        b.resize(w);
        if (w == 0) occ_[l] &= ~(std::uint64_t{1} << idx);
      }
    }
    {
      std::size_t w = 0;
      std::uint64_t new_min = ~std::uint64_t{0};
      for (const Entry& e : overflow_) {
        if (dead(e)) continue;
        overflow_[w++] = e;
        const std::uint64_t q = Quantum{}(e);
        if (q < new_min) new_min = q;
      }
      removed += overflow_.size() - w;
      overflow_.resize(w);
      overflow_min_q_ = new_min;
    }
    size_ -= removed;
    return removed;
  }

  /// Perf/obs counters (monotonic over the wheel's lifetime).
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t cascades() const { return cascades_; }
  std::uint64_t cascaded_entries() const { return cascaded_; }
  std::uint64_t slot_drains() const { return slot_drains_; }
  std::uint64_t overflow_inserts() const { return overflow_inserts_; }
  std::uint64_t overflow_jumps() const { return overflow_jumps_; }

 private:
  /// File under the level given by the highest digit in which q differs from
  /// the cursor; q == cur_ (only possible mid-cascade) lands in the level-0
  /// slot the cursor is parked on, which is drained next.
  void place(std::uint64_t q, const Entry& e) {
    const std::uint64_t x = q ^ cur_;
    const int level = x == 0 ? 0 : (63 - std::countl_zero(x)) / kSlotBits;
    if (level >= kLevels) {
      if (overflow_.empty() || q < overflow_min_q_) overflow_min_q_ = q;
      overflow_.push_back(e);
      ++overflow_inserts_;
      return;
    }
    const std::size_t idx = (q >> (level * kSlotBits)) & (kSlots - 1);
    buckets_[static_cast<std::size_t>(level) * kSlots + idx].push_back(e);
    occ_[level] |= std::uint64_t{1} << idx;
  }

  void cascade(int l, int j) {
    std::vector<Entry>& b = buckets_[static_cast<std::size_t>(l) * kSlots + j];
    occ_[l] &= ~(std::uint64_t{1} << j);
    ++cascades_;
    cascaded_ += b.size();
    // Re-filing always lands strictly below level l (the level-l digits now
    // match the cursor), so pushing into other buckets never aliases b.
    for (const Entry& e : b) place(Quantum{}(e), e);
    b.clear();
  }

  void refile_overflow() {
    scratch_.clear();
    scratch_.swap(overflow_);
    std::uint64_t new_min = ~std::uint64_t{0};
    for (const Entry& e : scratch_) {
      const std::uint64_t q = Quantum{}(e);
      if ((q ^ cur_) < kSpanQuanta) {
        place(q, e);
      } else {
        overflow_.push_back(e);
        if (q < new_min) new_min = q;
      }
    }
    overflow_min_q_ = new_min;
  }

  std::vector<std::vector<Entry>> buckets_;  // kLevels * kSlots, capacity sticky
  std::uint64_t occ_[kLevels] = {};
  std::vector<Entry> overflow_;
  std::vector<Entry> scratch_;
  std::uint64_t overflow_min_q_ = ~std::uint64_t{0};
  std::uint64_t cur_ = 0;
  std::size_t size_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t cascades_ = 0;
  std::uint64_t cascaded_ = 0;
  std::uint64_t slot_drains_ = 0;
  std::uint64_t overflow_inserts_ = 0;
  std::uint64_t overflow_jumps_ = 0;
};

}  // namespace uno
