#include "sim/event.hpp"

namespace uno {

std::uint64_t EventQueue::run_until(Time deadline) {
  std::uint64_t n = 0;
  const detail::HandlerRegistry* const reg = registry_.get();
  while (!heap_.empty() && key_time(heap_[0]) <= deadline) {
    const Entry e = heap_[0];
    pop_min();
    const detail::HandlerRegistry::Slot& s = reg->slots[e.slot];
    if (s.generation != e.gen) continue;  // handler was destroyed; stale wakeup
    EventHandler* h = s.handler;
    now_ = key_time(e);
    if (!heap_.empty()) __builtin_prefetch(&reg->slots[heap_[0].slot]);
    h->on_event(e.tag);
    ++n;
  }
  // Advance the clock to the deadline even if nothing fired there, so
  // successive run_until calls observe monotonic time.
  if (deadline != kTimeInfinity && deadline > now_) now_ = deadline;
  dispatched_ += n;
  return n;
}

void EventQueue::compact() {
  // Keep exactly the entries that could still dispatch: live slot generation
  // and not reported logically dead by the handler (superseded Timer arms).
  // {t, seq} is a total order, so the Floyd rebuild preserves fire order.
  const auto& slots = registry_->slots;
  std::size_t w = 0;
  for (const Entry& e : heap_) {
    const detail::HandlerRegistry::Slot& s = slots[e.slot];
    if (s.generation != e.gen || s.handler->event_stale(e.tag)) continue;
    heap_[w++] = e;
  }
  compacted_ += heap_.size() - w;
  heap_.resize(w);
  if (w > 1)
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) sift_down_hole(i, heap_[i]);
  stale_hint_ = 0;
  ++compactions_;
}

}  // namespace uno
