#include "sim/event.hpp"

namespace uno {

std::uint64_t EventQueue::run_until(Time deadline) {
  std::uint64_t n = 0;
  const detail::HandlerRegistry* const reg = registry_.get();
  for (;;) {
    if (heap_.empty()) {
      // The heap holds the entire current quantum, so an empty heap means
      // the next event (if any) lives in the wheel: advance the cursor and
      // pull the next occupied quantum in. This may overshoot the deadline —
      // the time check below catches that and the entries simply wait in the
      // heap for the next run_until call.
      if (!refill_from_wheel()) break;
      continue;
    }
    if (key_time(heap_[0]) > deadline) break;
    const Entry e = heap_[0];
    pop_min();
    const detail::HandlerRegistry::Slot& s = reg->slots[e.slot];
    if (s.generation != e.gen) continue;  // handler was destroyed; stale wakeup
    EventHandler* h = s.handler;
    now_ = key_time(e);
    if (!heap_.empty()) {
      // Pull the next entry's registry slot and — the slot array is small
      // and hot, so the handler pointer is almost always readable — the
      // handler object itself (vtable + first members) in while this
      // event's handler runs.
      const detail::HandlerRegistry::Slot& ns = reg->slots[heap_[0].slot];
      __builtin_prefetch(&ns);
      __builtin_prefetch(ns.handler);
    }
    stale_dispatch_ = false;
    h->on_event(e.tag);
    // A superseded timer wakeup flags itself via note_stale_consumed();
    // keeping it out of `n` makes the dispatch total independent of whether
    // compaction (a queue-size heuristic, so shard-count dependent) removed
    // the entry before it could pop.
    if (stale_dispatch_)
      ++stale_dispatches_;
    else
      ++n;
  }
  // Advance the clock to the deadline even if nothing fired there, so
  // successive run_until calls observe monotonic time.
  if (deadline != kTimeInfinity && deadline > now_) now_ = deadline;
  dispatched_ += n;
  return n;
}

bool EventQueue::refill_from_wheel() {
  return wheel_.pop_next_slot([this](const Entry& e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  });
}

void EventQueue::compact() {
  // Keep exactly the entries that could still dispatch: live slot generation
  // and not reported logically dead by the handler (superseded Timer arms).
  // {t, seq} is a total order, so the Floyd rebuild preserves fire order;
  // wheel buckets are unordered anyway (the heap re-sorts them on drain).
  const auto& slots = registry_->slots;
  const auto dead = [&slots](const Entry& e) {
    const detail::HandlerRegistry::Slot& s = slots[e.slot];
    return s.generation != e.gen || s.handler->event_stale(e.tag);
  };
  std::size_t w = 0;
  for (const Entry& e : heap_) {
    if (dead(e)) continue;
    heap_[w++] = e;
  }
  compacted_ += heap_.size() - w;
  heap_.resize(w);
  if (w > 1)
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) sift_down_hole(i, heap_[i]);
  compacted_ += wheel_.compact(dead);
  stale_hint_ = 0;
  ++compactions_;
}

}  // namespace uno
