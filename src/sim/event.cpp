#include "sim/event.hpp"

#include <cassert>

namespace uno {

void EventQueue::schedule_at(Time t, EventHandler* handler, std::uint32_t tag) {
  assert(handler != nullptr);
  assert(t >= now_ && "cannot schedule into the past");
  heap_.push(Entry{t, next_seq_++, handler, tag, handler->liveness()});
}

std::uint64_t EventQueue::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().t <= deadline) {
    Entry e = heap_.top();
    heap_.pop();
    if (e.alive.expired()) continue;  // handler was destroyed; stale wakeup
    now_ = e.t;
    e.handler->on_event(e.tag);
    ++n;
  }
  // Advance the clock to the deadline even if nothing fired there, so
  // successive run_until calls observe monotonic time.
  if (deadline != kTimeInfinity && deadline > now_) now_ = deadline;
  dispatched_ += n;
  return n;
}

}  // namespace uno
